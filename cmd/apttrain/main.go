// Command apttrain trains one backbone on SynthCIFAR with APT, a fixed
// bitwidth or fp32, printing per-epoch statistics — the generic training
// entry point for exploring the library outside the canned experiments.
//
// With -dist it trains data-parallel instead: N concurrent workers behind
// a parameter server, with a selectable gradient codec on the uplink; in
// -mode apt the server runs the precision controller and broadcasts
// weights bit-packed at each layer's current bitwidth.
//
// Distributed runs are operable: -checkpoint writes a complete resumable
// TrainState snapshot every -checkpoint-every rounds (atomically, with a
// version/CRC trailer), -resume restarts a killed run from it — in
// strict-barrier mode bit-identically to the uninterrupted run — and
// -publish periodically writes a bit-packed serving checkpoint that
// aptserve -watch hot-reloads. -heartbeat enables elastic worker
// membership: stalled workers are expelled from the gradient barrier and
// respawned within -max-respawns, the server steps on a -min-shards
// quorum, and stragglers' gradients fold in while at most -max-staleness
// rounds old. -halt-after stops a run cleanly after N rounds (a
// deterministic stand-in for a kill in resume tests).
//
// Usage:
//
//	apttrain -model resnet20 -classes 10 -epochs 20 -mode apt -tmin 6
//	apttrain -model smallcnn -mode fixed -bits 12
//	apttrain -model mobilenetv2 -mode fp32
//	apttrain -model smallcnn -mode apt -dist -workers 4 -codec ternary
//	apttrain -dist -checkpoint run.state -checkpoint-every 10 -halt-after 25
//	apttrain -dist -checkpoint run.state -resume -publish model.apt
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "apttrain:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("apttrain", flag.ContinueOnError)
	modelName := fs.String("model", "resnet20", "backbone: resnet20, resnet110, mobilenetv2, cifarnet, vggsmall, smallcnn")
	classes := fs.Int("classes", 10, "number of classes")
	size := fs.Int("size", 16, "input spatial size")
	width := fs.Float64("width", 0.25, "backbone width multiplier")
	trainN := fs.Int("train", 1024, "training samples")
	testN := fs.Int("test", 384, "test samples")
	epochs := fs.Int("epochs", 18, "training epochs")
	batch := fs.Int("batch", 64, "mini-batch size")
	lr := fs.Float64("lr", 0.1, "base learning rate")
	mode := fs.String("mode", "apt", "training mode: apt, fixed, fp32")
	bits := fs.Int("bits", 8, "bitwidth for -mode fixed")
	initBits := fs.Int("init-bits", 6, "APT initial bitwidth")
	tmin := fs.Float64("tmin", 6.0, "APT Tmin threshold")
	tmax := fs.Float64("tmax", math.Inf(1), "APT Tmax threshold")
	noise := fs.Float64("noise", 0.8, "SynthCIFAR pixel-noise level (task difficulty)")
	seed := fs.Uint64("seed", 42, "master seed")
	distFlag := fs.Bool("dist", false, "train data-parallel through the concurrent parameter-server engine")
	workers := fs.Int("workers", 2, "data-parallel workers for -dist")
	codecName := fs.String("codec", "fp32", "-dist gradient codec: fp32, 8bit, ternary")
	savePath := fs.String("save", "", "write the trained model as a bit-packed checkpoint (not supported with -dist; use -publish)")
	ckptPath := fs.String("checkpoint", "", "-dist: write resumable TrainState snapshots to this path")
	ckptEvery := fs.Int("checkpoint-every", 0, "-dist: checkpoint cadence in server rounds (0 = only at halt and end of run)")
	resume := fs.Bool("resume", false, "-dist: resume from the -checkpoint snapshot")
	publishPath := fs.String("publish", "", "-dist: publish bit-packed serving checkpoints to this path (watched by aptserve -watch)")
	publishEvery := fs.Int("publish-every", 0, "-dist: publish cadence in server rounds (0 = only at end of run)")
	haltAfter := fs.Int("halt-after", 0, "-dist: stop cleanly after this many total rounds, writing a checkpoint")
	heartbeat := fs.Duration("heartbeat", 0, "-dist: heartbeat timeout for elastic worker membership (0 = strict barrier)")
	minShards := fs.Int("min-shards", 0, "-dist: step on this K-of-N gradient quorum once the heartbeat grace expires")
	maxStaleness := fs.Int("max-staleness", 0, "-dist: fold straggler gradients up to this many rounds old (0 = drop)")
	maxRespawns := fs.Int("max-respawns", 0, "-dist: budget for respawning workers declared dead")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *savePath != "" && *distFlag {
		return fmt.Errorf("-save is not supported with -dist (use -publish)")
	}
	if !*distFlag {
		if *ckptPath != "" || *ckptEvery != 0 || *resume || *publishPath != "" || *publishEvery != 0 ||
			*haltAfter != 0 || *heartbeat != 0 || *minShards != 0 || *maxStaleness != 0 || *maxRespawns != 0 {
			return fmt.Errorf("-checkpoint/-resume/-publish/-halt-after and the elastic membership flags require -dist")
		}
	}
	if *resume && *ckptPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	cfg := models.Config{Classes: *classes, InputSize: *size, Width: *width, Seed: *seed}
	build := func() (*models.Model, error) { return models.Build(*modelName, cfg) }

	tr, te, err := data.NewSynth(data.SynthConfig{
		Classes: *classes, Train: *trainN, Test: *testN, Size: *size,
		Seed: *seed, Noise: *noise,
	})
	if err != nil {
		return err
	}
	// The augmentation RNG is kept addressable: a -dist run registers it
	// with the checkpoint machinery so a resumed run replays the exact
	// crop/flip draws of the uninterrupted one.
	augRNG := tensor.NewRNG(*seed ^ 0xA06)
	aug, err := data.NewAugmented(tr, max(*size/8, 1), *size, augRNG)
	if err != nil {
		return err
	}

	if *distFlag {
		// dist.Run builds the server model and the per-worker replicas
		// itself; don't materialize one here just to discard it.
		return runDist(out, distArgs{
			build: build, train: aug, test: te,
			workers: *workers, batch: *batch, epochs: *epochs,
			lr: *lr, seed: *seed, mode: *mode, codec: *codecName,
			initBits: *initBits, tmin: *tmin, tmax: *tmax,
			ckptPath: *ckptPath, ckptEvery: *ckptEvery, resume: *resume,
			publishPath: *publishPath, publishEvery: *publishEvery,
			haltAfter: *haltAfter, heartbeat: *heartbeat,
			minShards: *minShards, maxStaleness: *maxStaleness, maxRespawns: *maxRespawns,
			augRNG: augRNG,
		})
	}

	m, err := build()
	if err != nil {
		return err
	}
	tcfg := train.Config{
		Model: m, Train: aug, Test: te,
		BatchSize: *batch, Epochs: *epochs,
		Schedule: optim.StepSchedule{Base: *lr, Milestones: []int{*epochs / 2, *epochs * 3 / 4}, Factor: 0.1},
		Momentum: 0.9, WeightDecay: 1e-4,
		Seed: *seed, Log: out,
	}
	switch *mode {
	case "apt":
		c := core.DefaultConfig()
		c.InitBits = *initBits
		c.Tmin = *tmin
		c.Tmax = *tmax
		ctrl, err := core.NewController(c, m.Params())
		if err != nil {
			return err
		}
		tcfg.APT = ctrl
	case "fixed":
		if _, err := baselines.FixedBits(m.Params(), *bits); err != nil {
			return err
		}
	case "fp32":
		if _, err := baselines.FP32(m.Params()); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q (want apt, fixed or fp32)", *mode)
	}

	hist, err := train.Run(tcfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nfinal accuracy  %.4f (best %.4f)\n", hist.FinalAcc(), hist.BestAcc())
	fmt.Fprintf(out, "training energy %.3f of fp32\n", hist.NormalizedEnergy())
	fmt.Fprintf(out, "training memory %.3f of fp32\n", hist.NormalizedSize())
	if *savePath != "" {
		if err := saveCheckpoint(*savePath, m); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved checkpoint %s\n", *savePath)
	}
	return nil
}

// saveCheckpoint writes the trained model in the bit-packed
// models.Save format (loadable by aptserve -model) — atomically, with a
// version/CRC trailer, so a serving process re-reading the path on
// reload can never observe a torn file.
func saveCheckpoint(path string, m *models.Model) error {
	return models.SaveFileAtomic(path, m, 1)
}

type distArgs struct {
	build          func() (*models.Model, error)
	train, test    data.Dataset
	workers, batch int
	epochs         int
	lr             float64
	seed           uint64
	mode, codec    string
	initBits       int
	tmin, tmax     float64

	ckptPath     string
	ckptEvery    int
	resume       bool
	publishPath  string
	publishEvery int
	haltAfter    int
	heartbeat    time.Duration
	minShards    int
	maxStaleness int
	maxRespawns  int
	augRNG       *tensor.RNG
}

// runDist drives the concurrent parameter-server engine. In apt mode the
// server runs the precision controller and the weight broadcast ships
// bit-packed at each layer's current bitwidth.
func runDist(out io.Writer, a distArgs) error {
	cfg := dist.Config{
		Workers: a.workers, Build: a.build, Train: a.train, Test: a.test,
		BatchSize: a.batch, Epochs: a.epochs, LR: a.lr, Momentum: 0.9,
		Seed: a.seed, Concurrent: true,
		HeartbeatTimeout: a.heartbeat, MinShards: a.minShards,
		MaxStaleness: a.maxStaleness, MaxRespawns: a.maxRespawns,
		CheckpointPath: a.ckptPath, CheckpointEvery: a.ckptEvery,
		PublishPath: a.publishPath, PublishEvery: a.publishEvery,
		HaltAfterRounds: a.haltAfter,
		CheckpointRNGs:  []*tensor.RNG{a.augRNG},
	}
	if a.resume {
		st, err := models.LoadTrainState(a.ckptPath)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		cfg.Resume = st
		fmt.Fprintf(out, "resuming from %s (epoch %d, round %d)\n", a.ckptPath, st.Epoch, st.Rounds)
	}
	switch a.mode {
	case "apt":
		c := core.DefaultConfig()
		c.InitBits = a.initBits
		c.Tmin = a.tmin
		c.Tmax = a.tmax
		c.Interval = 1 // rounds are coarser than iterations; observe each one
		cfg.APT = &c
		cfg.QuantBroadcast = true
	case "fp32":
	default:
		return fmt.Errorf("-dist supports -mode apt or fp32, not %q", a.mode)
	}
	switch a.codec {
	case "fp32":
		cfg.Codec = dist.FP32Codec{}
	case "8bit":
		cfg.Codec = dist.KBitCodec{Bits: 8}
	case "ternary":
		cfg.Codec = dist.NewTernaryCodec(a.seed ^ 0x7E12)
	default:
		return fmt.Errorf("unknown codec %q (want fp32, 8bit or ternary)", a.codec)
	}
	stats, err := dist.Run(cfg)
	if err != nil {
		return err
	}
	for e, acc := range stats.Accs {
		fmt.Fprintf(out, "epoch %3d  acc %.4f\n", e, acc)
	}
	fmt.Fprintf(out, "\nfinal accuracy  %.4f\n", stats.FinalAcc())
	fmt.Fprintf(out, "uplink   %d bytes (%s codec)\n", stats.UpBytes, cfg.Codec.Name())
	bcast := "fp32"
	if cfg.QuantBroadcast {
		bcast = "APT bit-packed"
	}
	fmt.Fprintf(out, "downlink %d bytes (%s broadcast)\n", stats.DownBytes, bcast)
	fmt.Fprintf(out, "rounds %d  workers %d  mean bits %.2f\n", stats.Rounds, a.workers, stats.MeanBits)
	if stats.WorkersLost > 0 || stats.Respawns > 0 || stats.StaleFolded > 0 || stats.StaleDropped > 0 {
		fmt.Fprintf(out, "faults: lost %d  respawned %d  rejoined %d  errors %d  stale folded %d / dropped %d  partial rounds %d\n",
			stats.WorkersLost, stats.Respawns, stats.Rejoins, stats.WorkerErrors,
			stats.StaleFolded, stats.StaleDropped, stats.PartialRounds)
	}
	if stats.Checkpoints > 0 {
		fmt.Fprintf(out, "checkpoints %d -> %s\n", stats.Checkpoints, a.ckptPath)
	}
	if stats.Publishes > 0 && a.publishPath != "" {
		fmt.Fprintf(out, "published version %d -> %s\n", stats.Publishes, a.publishPath)
	}
	if stats.Halted {
		fmt.Fprintf(out, "halted after %d rounds (resume with -resume)\n", stats.Rounds)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
