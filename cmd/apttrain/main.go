// Command apttrain trains one backbone on SynthCIFAR with APT, a fixed
// bitwidth or fp32, printing per-epoch statistics — the generic training
// entry point for exploring the library outside the canned experiments.
//
// Usage:
//
//	apttrain -model resnet20 -classes 10 -epochs 20 -mode apt -tmin 6
//	apttrain -model smallcnn -mode fixed -bits 12
//	apttrain -model mobilenetv2 -mode fp32
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "apttrain:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("apttrain", flag.ContinueOnError)
	modelName := fs.String("model", "resnet20", "backbone: resnet20, resnet110, mobilenetv2, cifarnet, vggsmall, smallcnn")
	classes := fs.Int("classes", 10, "number of classes")
	size := fs.Int("size", 16, "input spatial size")
	width := fs.Float64("width", 0.25, "backbone width multiplier")
	trainN := fs.Int("train", 1024, "training samples")
	testN := fs.Int("test", 384, "test samples")
	epochs := fs.Int("epochs", 18, "training epochs")
	batch := fs.Int("batch", 64, "mini-batch size")
	lr := fs.Float64("lr", 0.1, "base learning rate")
	mode := fs.String("mode", "apt", "training mode: apt, fixed, fp32")
	bits := fs.Int("bits", 8, "bitwidth for -mode fixed")
	initBits := fs.Int("init-bits", 6, "APT initial bitwidth")
	tmin := fs.Float64("tmin", 6.0, "APT Tmin threshold")
	tmax := fs.Float64("tmax", math.Inf(1), "APT Tmax threshold")
	noise := fs.Float64("noise", 0.8, "SynthCIFAR pixel-noise level (task difficulty)")
	seed := fs.Uint64("seed", 42, "master seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := models.Config{Classes: *classes, InputSize: *size, Width: *width, Seed: *seed}
	var (
		m   *models.Model
		err error
	)
	switch *modelName {
	case "resnet20":
		m, err = models.ResNet20(cfg)
	case "resnet110":
		m, err = models.ResNet110(cfg)
	case "mobilenetv2":
		m, err = models.MobileNetV2(cfg)
	case "cifarnet":
		m, err = models.CifarNet(cfg)
	case "vggsmall":
		m, err = models.VGGSmall(cfg)
	case "smallcnn":
		m, err = models.SmallCNN(cfg)
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	if err != nil {
		return err
	}

	tr, te, err := data.NewSynth(data.SynthConfig{
		Classes: *classes, Train: *trainN, Test: *testN, Size: *size,
		Seed: *seed, Noise: *noise,
	})
	if err != nil {
		return err
	}
	aug, err := data.NewAugmented(tr, max(*size/8, 1), *size, tensor.NewRNG(*seed^0xA06))
	if err != nil {
		return err
	}

	tcfg := train.Config{
		Model: m, Train: aug, Test: te,
		BatchSize: *batch, Epochs: *epochs,
		Schedule: optim.StepSchedule{Base: *lr, Milestones: []int{*epochs / 2, *epochs * 3 / 4}, Factor: 0.1},
		Momentum: 0.9, WeightDecay: 1e-4,
		Seed: *seed, Log: out,
	}
	switch *mode {
	case "apt":
		c := core.DefaultConfig()
		c.InitBits = *initBits
		c.Tmin = *tmin
		c.Tmax = *tmax
		ctrl, err := core.NewController(c, m.Params())
		if err != nil {
			return err
		}
		tcfg.APT = ctrl
	case "fixed":
		if _, err := baselines.FixedBits(m.Params(), *bits); err != nil {
			return err
		}
	case "fp32":
		if _, err := baselines.FP32(m.Params()); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q (want apt, fixed or fp32)", *mode)
	}

	hist, err := train.Run(tcfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nfinal accuracy  %.4f (best %.4f)\n", hist.FinalAcc(), hist.BestAcc())
	fmt.Fprintf(out, "training energy %.3f of fp32\n", hist.NormalizedEnergy())
	fmt.Fprintf(out, "training memory %.3f of fp32\n", hist.NormalizedSize())
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
