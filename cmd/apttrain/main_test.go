package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/models"
)

func TestRunTrainsTinyModel(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-model", "smallcnn", "-classes", "3", "-size", "12",
		"-train", "96", "-test", "48", "-epochs", "2", "-batch", "32",
		"-mode", "apt", "-tmin", "4",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"final accuracy", "training energy", "training memory"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunSavesLoadableCheckpoint: -save writes a bit-packed checkpoint
// that models.Load restores into a freshly built architecture.
func TestRunSavesLoadableCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.apt")
	var out strings.Builder
	err := run([]string{
		"-model", "smallcnn", "-classes", "3", "-size", "12",
		"-train", "64", "-test", "32", "-epochs", "1", "-batch", "32",
		"-mode", "apt", "-save", path,
	}, &out)
	if err != nil {
		t.Fatalf("run -save: %v", err)
	}
	if !strings.Contains(out.String(), "saved checkpoint") {
		t.Errorf("output missing save confirmation:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("checkpoint missing: %v", err)
	}
	defer f.Close()
	// Width matches apttrain's default -width 0.25.
	m, err := models.Build("smallcnn", models.Config{Classes: 3, InputSize: 12, Width: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := models.Load(f, m); err != nil {
		t.Fatalf("checkpoint does not load: %v", err)
	}

	var errOut strings.Builder
	if err := run([]string{"-dist", "-save", path}, &errOut); err == nil {
		t.Error("-save with -dist did not error")
	}
}

func TestRunFixedAndFP32Modes(t *testing.T) {
	for _, mode := range []string{"fixed", "fp32"} {
		var out strings.Builder
		err := run([]string{
			"-model", "smallcnn", "-classes", "3", "-size", "12",
			"-train", "64", "-test", "32", "-epochs", "1", "-batch", "32",
			"-mode", mode, "-bits", "10",
		}, &out)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

func TestRunDistMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-model", "smallcnn", "-classes", "3", "-size", "12",
		"-train", "96", "-test", "48", "-epochs", "2", "-batch", "32",
		"-mode", "apt", "-dist", "-workers", "2", "-codec", "8bit",
	}, &out)
	if err != nil {
		t.Fatalf("run -dist: %v", err)
	}
	for _, want := range []string{"final accuracy", "uplink", "downlink", "APT bit-packed", "mean bits"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "nosuch"}, &out); err == nil {
		t.Error("unknown model did not error")
	}
	if err := run([]string{"-mode", "nosuch"}, &out); err == nil {
		t.Error("unknown mode did not error")
	}
	if err := run([]string{"-dist", "-mode", "fixed"}, &out); err == nil {
		t.Error("-dist with fixed mode did not error")
	}
	if err := run([]string{"-dist", "-codec", "nosuch"}, &out); err == nil {
		t.Error("unknown codec did not error")
	}
}
