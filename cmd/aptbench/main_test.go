package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	var out strings.Builder
	csv := filepath.Join(t.TempDir(), "out.csv")
	if err := run([]string{"-exp", "fig1", "-scale", "micro", "-csv", csv}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "fig1") {
		t.Errorf("output missing fig1 header:\n%s", out.String())
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.Contains(string(data), "epoch") {
		t.Errorf("csv missing header: %q", string(data)[:min(len(data), 80)])
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("no -exp/-all did not error")
	}
	if err := run([]string{"-exp", "nosuch"}, &out); err == nil {
		t.Error("unknown experiment did not error")
	}
	if err := run([]string{"-exp", "fig1", "-scale", "nosuch"}, &out); err == nil {
		t.Error("unknown scale did not error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
