package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchkit"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Kernel micro-benchmarks: the numeric hot paths the training loop spends
// its time in, run through testing.Benchmark and emitted as a
// machine-readable JSON report so the perf trajectory is tracked from one
// PR to the next (compare against the committed BENCH_tensor.json).

// kernelBench is one benchmark row of the JSON report.
type kernelBench struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// MFlops is the achieved arithmetic rate (2·MACs per op) where the
	// benchmark has a defined FLOP count.
	MFlops float64 `json:"mflops,omitempty"`
}

// seedBaseline is the same benchmark set measured at the seed commit's
// per-sample im2col + naive-GEMM path (dc0a200, 1-core reference dev
// machine, Xeon @ 2.10GHz). Kept in the report so any machine can read the
// trajectory without digging through git history; refresh it only when the
// reference machine changes.
var seedBaseline = []kernelBench{
	{Name: "MatMul256", NsPerOp: 7280736, AllocsPerOp: 5, BytesPerOp: 262320},
	{Name: "MatMulConvShaped", NsPerOp: 14922485, AllocsPerOp: 5, BytesPerOp: 4194480},
	{Name: "ConvForward64", NsPerOp: 17851665, AllocsPerOp: 779, BytesPerOp: 15751984},
	{Name: "ConvForwardBackward64", NsPerOp: 57427886, AllocsPerOp: 1876, BytesPerOp: 24815184},
}

// simdInfo records which kernel dispatch produced a report, so perf
// trajectories across machines are interpretable: the same benchmark on
// a host without (or with disabled) assembly kernels is a different
// experiment.
type simdInfo struct {
	// Active reports whether the assembly kernels were dispatched while
	// the benchmarks ran (false on non-amd64 hosts, under APT_NOSIMD, or
	// when CPUID rejects the CPU/OS).
	Active bool `json:"active"`
	// Features names the CPU features backing the assembly kernels
	// ("avx2,fma" on supported amd64), or "" when none exist.
	Features string `json:"features"`
}

func currentSIMDInfo() simdInfo {
	return simdInfo{Active: tensor.SIMDActive(), Features: tensor.SIMDFeatures()}
}

// kernelReport is the full JSON document.
type kernelReport struct {
	Generated    string        `json:"generated"`
	GoVersion    string        `json:"go_version"`
	GOOS         string        `json:"goos"`
	GOARCH       string        `json:"goarch"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	SIMD         simdInfo      `json:"simd"`
	Benchmarks   []kernelBench `json:"benchmarks"`
	SeedBaseline []kernelBench `json:"seed_baseline"`
}

// runKernelBenches executes the micro-benchmarks, prints a table, and
// writes the JSON report to jsonPath.
func runKernelBenches(out io.Writer, jsonPath string) error {
	rep := kernelReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SIMD:       currentSIMDInfo(),
	}
	fmt.Fprintf(out, "kernel dispatch: simd=%v features=%q\n", rep.SIMD.Active, rep.SIMD.Features)

	record := func(name string, flopsPerOp float64, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		row := kernelBench{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if flopsPerOp > 0 && row.NsPerOp > 0 {
			row.MFlops = flopsPerOp / row.NsPerOp * 1e3
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
		fmt.Fprintf(out, "%-24s %12.0f ns/op %8d allocs/op %10.0f MFLOP/s\n",
			name, row.NsPerOp, row.AllocsPerOp, row.MFlops)
	}

	record("MatMul256", benchkit.MatMul256Flops, func(b *testing.B) {
		x, y := benchkit.MatMul256()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tensor.MatMul(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})

	record("MatMulConvShaped", benchkit.ConvShapedGEMMFlops, func(b *testing.B) {
		w, cols := benchkit.ConvShapedGEMM()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tensor.MatMul(w, cols); err != nil {
				b.Fatal(err)
			}
		}
	})

	newConv := func(b *testing.B) (*nn.Conv2D, *tensor.Tensor) {
		conv, x, err := benchkit.Conv64()
		if err != nil {
			b.Fatal(err)
		}
		return conv, x
	}
	const convFlops = benchkit.Conv64ForwardFlops

	record("ConvForward64", convFlops, func(b *testing.B) {
		conv, x := newConv(b)
		if _, err := conv.Forward(x, true); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := conv.Forward(x, true); err != nil {
				b.Fatal(err)
			}
		}
	})

	record("ConvForwardBackward64", 3*convFlops, func(b *testing.B) {
		conv, x := newConv(b)
		out, err := conv.Forward(x, true)
		if err != nil {
			b.Fatal(err)
		}
		dout := tensor.New(out.Shape()...)
		dout.Fill(0.01)
		if _, err := conv.Backward(dout); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := conv.Forward(x, true); err != nil {
				b.Fatal(err)
			}
			if _, err := conv.Backward(dout); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Integer GEMM rows: the serving engine's conv-shaped product
	// (SmallCNN layer 3 at the deploy geometry) through the PR 3 strided
	// kernel and through the packed-panel path the engine now runs —
	// whether the packed row beats the float GEMMs above is exactly the
	// "int8 is the fastest path" claim, so it belongs in the trajectory.
	intM, intK, intN := 4096, 144, 32
	intFlops := 2 * float64(intM) * float64(intK) * float64(intN)
	rng := tensor.NewRNG(7)
	wInt := make([]int8, intN*intK)
	for i := range wInt {
		wInt[i] = int8(rng.Intn(255) - 127)
	}
	xInt := make([]uint8, intM*intK+3) // +3: packed kernels read 4-tap quads
	for i := range xInt {
		xInt[i] = uint8(rng.Intn(256))
	}
	record("IntGEMMConvShaped", intFlops, func(b *testing.B) {
		dst := make([]int32, intN*intM)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tensor.MatMulI8U8Into(dst, wInt, xInt[:intK*intM], intN, intK, intM); err != nil {
				b.Fatal(err)
			}
		}
	})
	// IntGEMMPacked4Row continues the IntGEMMPacked series under its
	// multi-row name: since the 4×8 register-blocked kernels landed, the
	// packed GEMM processes four activation rows per panel-quad load, so
	// this row against PR 4's IntGEMMPacked number (same workload, same
	// operands) is the one-row → multi-row before/after. The old row name
	// was retired rather than kept alongside — two rows measuring one
	// code path differ only by run noise.
	record("IntGEMMPacked4Row", intFlops, func(b *testing.B) {
		pb, err := tensor.PackI8PanelsBT(wInt, intK, intN)
		if err != nil {
			b.Fatal(err)
		}
		dst := make([]int32, intM*intN)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tensor.MatMulU8I8PackedInto(dst, xInt, pb, intM, intK); err != nil {
				b.Fatal(err)
			}
		}
	})

	// ConvImplicitU8 / ConvMaterializedU8: the whole int8 conv lowering —
	// patch gather + packed GEMM — on the deploy-shaped stride-1 layer
	// (16ch 16×16 3×3 pad 1, 16 samples → the exact 4096×144×32 product
	// of IntGEMMPacked4Row, so the gap between either row and that one is
	// the gather cost). The implicit row runs the band-staged gather that
	// feeds kernels from cache; the materialized row packs the full patch
	// matrix first, the way every conv ran before the implicit path. Both
	// produce bit-identical accumulators; the ratio is the lowering win.
	convG := tensor.ConvGeom{InC: 16, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	convN := 16
	convOH, convOW := convG.OutHW()
	convPos := convN * convOH * convOW
	convSrc := make([]uint8, convN*convG.InC*convG.InH*convG.InW)
	for i := range convSrc {
		convSrc[i] = uint8(rng.Intn(256))
	}
	convPacked, err := tensor.PackI8PanelsBT(wInt, intK, intN)
	if err != nil {
		return err
	}
	record("ConvImplicitU8", intFlops, func(b *testing.B) {
		plan, err := tensor.NewConvPlanU8(convG)
		if err != nil {
			b.Fatal(err)
		}
		work := make([]uint8, plan.Bands()*convN*plan.BandLen())
		acc := make([]int32, convPos*intN)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tensor.ConvU8I8ImplicitInto(acc, convSrc, convN, convPacked, plan, 3, work); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("ConvMaterializedU8", intFlops, func(b *testing.B) {
		cols := make([]uint8, convPos*intK+3)
		acc := make([]int32, convPos*intN)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tensor.Im2ColBatchU8PatchesInto(cols[:convPos*intK], convSrc, convN, convG, 3); err != nil {
				b.Fatal(err)
			}
			if err := tensor.MatMulU8I8PackedInto(acc, cols, convPacked, convPos, intK); err != nil {
				b.Fatal(err)
			}
		}
	})

	// RequantQ31: the serving epilogue alone — requantize the transposed
	// (position-major) accumulator block the packed GEMM above produces,
	// at the same deploy geometry. This is the part of Engine.Forward that
	// the SIMD requant kernels vectorized; tracking it next to the GEMM
	// rows shows how the epilogue share of an int8 layer evolves. The op
	// count is per-element (not MACs), so the MFLOP/s column reads as
	// requantized elements ×2 per ns.
	rqNP, rqNC := intM, intN
	rqM0 := make([]int32, rqNC)
	rqRsh := make([]int32, rqNC)
	rqCorr := make([]int64, rqNC)
	for c := 0; c < rqNC; c++ {
		rqM0[c] = int32(1<<30 + c*12345)
		rqRsh[c] = int32(18 + c%8)
		rqCorr[c] = int64(c*1009 - 5000)
	}
	rqAcc := make([]int32, rqNP*rqNC)
	for i := range rqAcc {
		rqAcc[i] = int32(rng.Intn(1<<22) - 1<<21)
	}
	record("RequantQ31", 2*float64(rqNP)*float64(rqNC), func(b *testing.B) {
		dst := make([]uint8, rqNC*rqNP)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.RequantQ31Transpose(dst, rqAcc, rqM0, rqRsh, rqCorr, 3, 0, rqNP, rqNC, rqNC, rqNP)
		}
	})

	// EdgePanelGEMM: the narrow shapes that used to fall off the packed
	// path entirely — a classifier-head float GEMM (n=10 → one 8-wide
	// panel plus a 2-column edge) and a first-layer-dW-shaped int8 GEMM
	// with a partial final panel. Before the 8-wide and masked-store edge
	// kernels these ran the dot/AXPY fallback; the row exists so a
	// regression that reroutes them shows up as a step.
	edgeM, edgeK, edgeN := 512, 256, 10
	edgeFlops := 2 * float64(edgeM) * float64(edgeK) * float64(edgeN)
	record("EdgePanelGEMM", edgeFlops, func(b *testing.B) {
		a := tensor.New(edgeM, edgeK)
		bm := tensor.New(edgeK, edgeN)
		fillRNG := tensor.NewRNG(11)
		for i, d := 0, a.Data(); i < len(d); i++ {
			d[i] = fillRNG.Float32()
		}
		for i, d := 0, bm.Data(); i < len(d); i++ {
			d[i] = fillRNG.Float32()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tensor.MatMul(a, bm); err != nil {
				b.Fatal(err)
			}
		}
	})

	// FloatGEMMPacked: the conv-shaped float GEMM through the packed 4×16
	// FMA micro-kernel with B pre-packed — kernel time alone, the number
	// to compare against MatMulConvShaped's AXPY-era entries. The packing
	// itself is measured by the routed MatMulConvShaped row above (MatMul
	// repacks per call on this shape).
	record("FloatGEMMPacked", benchkit.ConvShapedGEMMFlops, func(b *testing.B) {
		w, cols := benchkit.ConvShapedGEMM()
		pb, err := tensor.PackF32PanelsB(cols.Data(), cols.Dim(0), cols.Dim(1))
		if err != nil {
			b.Fatal(err)
		}
		dst := make([]float32, w.Dim(0)*cols.Dim(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tensor.MatMulF32PackedInto(dst, w.Data(), pb, w.Dim(0), w.Dim(1)); err != nil {
				b.Fatal(err)
			}
		}
	})

	rep.SeedBaseline = seedBaseline
	for _, base := range seedBaseline {
		for _, cur := range rep.Benchmarks {
			if cur.Name == base.Name && cur.NsPerOp > 0 {
				fmt.Fprintf(out, "%-24s %.2fx vs seed, allocs %d -> %d\n",
					cur.Name, base.NsPerOp/cur.NsPerOp, base.AllocsPerOp, cur.AllocsPerOp)
			}
		}
	}

	if err := writeKernelReport(jsonPath, &rep); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", jsonPath)
	return nil
}

// writeKernelReport rewrites the kernel-report fields of the benchmark
// JSON while carrying through any foreign top-level keys other tools have
// merged in (e.g. the dist experiment's "dist_faults" sweep). An existing
// file that fails to parse is simply overwritten.
func writeKernelReport(jsonPath string, rep *kernelReport) error {
	repJSON, err := json.Marshal(rep)
	if err != nil {
		return fmt.Errorf("marshal kernel report: %w", err)
	}
	doc := map[string]json.RawMessage{}
	if old, err := os.ReadFile(jsonPath); err == nil {
		if err := json.Unmarshal(old, &doc); err != nil {
			doc = map[string]json.RawMessage{}
		}
	}
	var repMap map[string]json.RawMessage
	if err := json.Unmarshal(repJSON, &repMap); err != nil {
		return fmt.Errorf("marshal kernel report: %w", err)
	}
	for k, v := range repMap {
		doc[k] = v
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal kernel report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return fmt.Errorf("write kernel report: %w", err)
	}
	return nil
}
