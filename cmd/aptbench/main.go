// Command aptbench regenerates the paper's evaluation artefacts (Figures
// 1–5 and Table I) on the SynthCIFAR workloads.
//
// Usage:
//
//	aptbench -exp fig2 [-scale micro|ci|paper] [-v] [-csv out.csv]
//	aptbench -all [-scale ci]
//	aptbench -kernels [-benchout BENCH_tensor.json]
//
// Each experiment prints a text table mirroring the paper's artefact; -csv
// additionally writes the rows as CSV. -kernels instead runs the tensor
// engine micro-benchmarks (GEMM, batched conv forward/backward) and writes
// a machine-readable JSON report for tracking the perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aptbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aptbench", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment id ("+strings.Join(experiments.IDs(), ", ")+")")
	all := fs.Bool("all", false, "run every experiment")
	scaleName := fs.String("scale", "ci", "scale profile: micro, ci or paper")
	verbose := fs.Bool("v", false, "log per-epoch training progress")
	csvPath := fs.String("csv", "", "also write results as CSV to this file (one block per experiment)")
	kernels := fs.Bool("kernels", false, "run tensor-engine micro-benchmarks instead of experiments")
	benchOut := fs.String("benchout", "BENCH_tensor.json", "JSON report path for -kernels and experiment artifacts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *kernels {
		return runKernelBenches(out, *benchOut)
	}
	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = []string{*exp}
	default:
		return fmt.Errorf("pass -exp <id> or -all (ids: %s)", strings.Join(experiments.IDs(), ", "))
	}

	var log io.Writer
	if *verbose {
		log = out
	}
	var csv strings.Builder
	for _, id := range ids {
		runner, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		start := time.Now()
		rep, err := runner(scale, log)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprint(out, rep.Render())
		fmt.Fprintf(out, "(%s scale, %s)\n\n", scale.Name, time.Since(start).Round(time.Millisecond))
		if len(rep.Artifacts) > 0 {
			if err := mergeBenchArtifacts(*benchOut, rep.Artifacts); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Fprintf(out, "merged %s artifacts into %s\n\n", rep.ID, *benchOut)
		}
		if *csvPath != "" {
			csv.WriteString("# " + rep.ID + ": " + rep.Title + "\n")
			csv.WriteString(rep.CSV())
			csv.WriteString("\n")
		}
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
	}
	return nil
}

// mergeBenchArtifacts folds an experiment's machine-readable artifacts
// into the benchmark JSON at path as top-level keys, preserving whatever
// the file already holds (the -kernels report, other experiments' keys).
func mergeBenchArtifacts(path string, artifacts map[string]any) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for k, v := range artifacts {
		raw, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("marshal artifact %q: %w", k, err)
		}
		doc[k] = raw
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
