package main

import (
	"strings"
	"testing"
)

// TestSmokeRoundTrip runs the whole serving pipeline end to end: train,
// compile, bind an ephemeral port, one HTTP classify round trip, clean
// shutdown — the same path CI drives via `aptserve -smoke`.
func TestSmokeRoundTrip(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-smoke", "-size", "12", "-train", "96", "-test", "32", "-epochs", "1",
		"-workers", "1", "-max-batch", "4",
	}, &out)
	if err != nil {
		t.Fatalf("run -smoke: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"/classify -> class", "clean shutdown"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("unknown flag did not error")
	}
}
