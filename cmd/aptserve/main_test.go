package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/train"
)

// TestSmokeRoundTrip runs the whole serving pipeline end to end: train,
// compile, bind an ephemeral port, HTTP classify + readiness + hot
// reload round trips, clean shutdown — the same path CI drives via
// `aptserve -smoke`.
func TestSmokeRoundTrip(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-smoke", "-size", "12", "-train", "96", "-test", "32", "-epochs", "1",
		"-workers", "1", "-max-batch", "4", "-deadline", "30s",
	}, &out)
	if err != nil {
		t.Fatalf("run -smoke: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"/classify -> class",
		"hot reload -> model version 2",
		"clean shutdown",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestModelFlagServesCheckpoint decouples serving from training: a tiny
// model trained here is saved in the bit-packed checkpoint format, then
// aptserve -model loads and serves it without training at startup.
func TestModelFlagServesCheckpoint(t *testing.T) {
	tr, te, err := data.NewSynth(data.SynthConfig{
		Classes: 4, Train: 96, Test: 32, Size: 12, Seed: 8, Noise: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(train.Config{
		Model: m, Train: tr, Test: te, BatchSize: 32, Epochs: 1,
		Schedule: optim.ConstSchedule(0.05), Momentum: 0.9, Seed: 10,
	}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.apt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := models.Save(f, m); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// No -arch/-width: both are read from the checkpoint header.
	var out strings.Builder
	err = run([]string{
		"-smoke", "-model", path, "-size", "12", "-train", "96", "-test", "32",
		"-workers", "1", "-max-batch", "4", "-seed", "8",
	}, &out)
	if err != nil {
		t.Fatalf("run -smoke -model: %v\noutput:\n%s", err, out.String())
	}
	// The smoke probe's hot reload re-reads the checkpoint file, so the
	// -model path proves the full disk-to-swap loop.
	for _, want := range []string{
		"loaded smallcnn (width 1) checkpoint",
		"/classify -> class",
		"hot reload -> model version 2",
		"clean shutdown",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "training smallcnn") {
		t.Errorf("-model still trained at startup:\n%s", out.String())
	}

	// An explicit matching override still works (the legacy invocation).
	var overrideOut strings.Builder
	err = run([]string{
		"-smoke", "-model", path, "-arch", "smallcnn", "-width", "1", "-size", "12",
		"-workers", "1", "-max-batch", "4", "-seed", "8",
	}, &overrideOut)
	if err != nil {
		t.Fatalf("run -smoke -model -arch override: %v\noutput:\n%s", err, overrideOut.String())
	}

	var errOut strings.Builder
	if err := run([]string{"-smoke", "-model", path, "-arch", "resnet20", "-size", "12"}, &errOut); err == nil {
		t.Error("architecture mismatch did not error")
	}
}

func TestBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("unknown flag did not error")
	}
}
