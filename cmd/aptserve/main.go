// Command aptserve serves a model over HTTP with dynamic micro-batching,
// compiled to the integer-only inference engine. By default it trains a
// compact model on the SynthCIFAR workload at startup; -model decouples
// serving from training by loading a bit-packed checkpoint (the
// models.Save format apttrain -save writes). The checkpoint header
// names its architecture and width multiplier, so -arch and -width are
// optional overrides — needed only for legacy checkpoints written
// before the width field existed at a non-default width:
//
//	aptserve [-addr :8651] [-workers 2] [-max-batch 32] [-max-delay 2ms]
//	aptserve -model ckpt.apt [-classes 4] [-size 16]
//	aptserve -model legacy.apt -arch smallcnn -width 0.5
//
// Endpoints:
//
//	POST /classify      {"input": [c·h·w floats]} or {"inputs": [[...], ...]};
//	                    optional "deadline_ms" bounds queue wait + inference
//	GET  /healthz       liveness probe (starting/ok/degraded/draining)
//	GET  /readyz        readiness probe: 200 only when traffic should route here
//	GET  /stats         request/batch counters, p50/p99 latency, throughput
//	POST /admin/reload  hot-swap the model without dropping in-flight work
//
// Hot reload: POST /admin/reload (or send the process SIGHUP) re-reads
// the -model checkpoint — or recompiles the startup-trained model — and
// atomically swaps the new engine in; in-flight batches finish on the old
// one. Overwrite the checkpoint file with freshly trained weights, then
// reload, for a zero-downtime model update. -deadline imposes a default
// per-request deadline on requests that don't carry their own.
//
// -smoke starts the server on an ephemeral port, performs health,
// classify, and hot-reload round trips, and shuts down cleanly — the CI
// end-to-end probe.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/data"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/serve"
	"repro/internal/train"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aptserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aptserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8651", "listen address")
	classes := fs.Int("classes", 4, "number of classes")
	size := fs.Int("size", 16, "input spatial size")
	trainN := fs.Int("train", 512, "training samples")
	testN := fs.Int("test", 128, "held-out samples")
	epochs := fs.Int("epochs", 6, "training epochs before serving")
	modelPath := fs.String("model", "", "serve a bit-packed checkpoint (models.Save format) instead of training at startup")
	arch := fs.String("arch", "", "override the -model checkpoint's architecture header (default: read from the checkpoint)")
	width := fs.Float64("width", 0, "override the checkpoint's width multiplier (default: read from the checkpoint)")
	seed := fs.Uint64("seed", 7, "experiment seed")
	workers := fs.Int("workers", 2, "batching workers (engine replicas)")
	maxBatch := fs.Int("max-batch", 32, "max samples fused into one engine call")
	maxDelay := fs.Duration("max-delay", 2*time.Millisecond, "max wait for a batch to fill")
	queueCap := fs.Int("queue", 0, "request queue bound (0 = 4·max-batch·workers)")
	deadline := fs.Duration("deadline", 0, "default per-request deadline for /classify (0 = none; requests may set deadline_ms)")
	smoke := fs.Bool("smoke", false, "serve on an ephemeral port, run classify and hot-reload round trips, exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, testSet, err := buildServer(serverConfig{
		classes: *classes, size: *size, trainN: *trainN, testN: *testN,
		epochs: *epochs, seed: *seed,
		modelPath: *modelPath, arch: *arch, width: *width,
		workers: *workers, maxBatch: *maxBatch, maxDelay: *maxDelay, queueCap: *queueCap,
		deadline: *deadline,
	}, out)
	if err != nil {
		return err
	}
	defer srv.Close()

	// A slow or stalled client must not hold a connection (and its
	// handler goroutine) open indefinitely: bound every phase of the
	// exchange. The write timeout leaves room for a full queue wait plus
	// a large batched inference.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	if *smoke {
		return smokeRun(hs, srv, testSet, *size, out)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving on %s (workers=%d max-batch=%d max-delay=%s)\n",
		ln.Addr(), *workers, *maxBatch, *maxDelay)

	// SIGHUP hot-swaps the model: the same path as POST /admin/reload.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if v, err := srv.Reload(); err != nil {
				fmt.Fprintf(out, "reload failed: %v\n", err)
			} else {
				fmt.Fprintf(out, "reloaded model (version %d)\n", v)
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	srv.Close()
	stats := srv.Stats()
	fmt.Fprintf(out, "served %d requests in %d batches (mean batch %.2f)\n",
		stats.Requests, stats.Batches, stats.MeanBatch)
	return nil
}

// serverConfig carries the resolved flags into buildServer.
type serverConfig struct {
	classes, size int
	trainN, testN int
	epochs        int
	seed          uint64
	modelPath     string // non-empty: load a checkpoint instead of training
	arch          string
	width         float64
	workers       int
	maxBatch      int
	maxDelay      time.Duration
	queueCap      int
	deadline      time.Duration
}

// buildServer obtains a model — training one at startup, or loading the
// bit-packed checkpoint named by -model — compiles it to the integer
// engine, and wraps it in the batching server. The SynthCIFAR train
// split doubles as the calibration batch in both paths.
func buildServer(cfg serverConfig, out io.Writer) (*serve.Server, data.Dataset, error) {
	trainSet, testSet, err := data.NewSynth(data.SynthConfig{
		Classes: cfg.classes, Train: cfg.trainN, Test: cfg.testN, Size: cfg.size, Seed: cfg.seed, Noise: 0.5,
	})
	if err != nil {
		return nil, nil, err
	}
	mcfg := models.Config{Classes: cfg.classes, InputSize: cfg.size, Seed: cfg.seed + 1}
	var model *models.Model
	if cfg.modelPath != "" {
		model, err = models.LoadAutoFile(cfg.modelPath, cfg.arch, cfg.width, mcfg)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(out, "loaded %s (width %g) checkpoint %s\n", model.Name, model.Width, cfg.modelPath)
	} else {
		model, err = models.SmallCNN(mcfg)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(out, "training smallcnn (%d samples, %d epochs)...\n", cfg.trainN, cfg.epochs)
		hist, err := train.Run(train.Config{
			Model: model, Train: trainSet, Test: testSet, BatchSize: 32, Epochs: cfg.epochs,
			Schedule: optim.ConstSchedule(0.05), Momentum: 0.9, Seed: cfg.seed + 2,
		})
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(out, "trained to %.1f%% accuracy\n", 100*hist.BestAcc())
	}
	calibN := 64
	if calibN > trainSet.Len() {
		calibN = trainSet.Len()
	}
	calib, _, err := data.PackBatch(trainSet, calibN)
	if err != nil {
		return nil, nil, err
	}
	compile := func(m *models.Model) (serve.Classifier, error) {
		return infer.Compile(m, infer.Config{Calibration: calib})
	}
	engine, err := compile(model)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(out, "int8 engine %.1f KiB\n", float64(engine.(*infer.Engine).SizeBytes())/1024)
	// The reload function backs SIGHUP and POST /admin/reload: with
	// -model it re-reads the checkpoint path (pick up newly trained
	// weights written under the same name); otherwise it recompiles the
	// startup-trained model, which still proves out the swap path.
	reload := func() (serve.Classifier, error) { return compile(model) }
	if cfg.modelPath != "" {
		reload = func() (serve.Classifier, error) {
			m, err := models.LoadAutoFile(cfg.modelPath, cfg.arch, cfg.width, mcfg)
			if err != nil {
				return nil, err
			}
			return compile(m)
		}
	}
	srv, err := serve.New(serve.Config{
		Engine:  engine, // sample geometry defaults from engine.InputShape
		Workers: cfg.workers, MaxBatch: cfg.maxBatch, MaxDelay: cfg.maxDelay, QueueCap: cfg.queueCap,
		DefaultDeadline: cfg.deadline,
		Reload:          reload,
		Warmup:          true,
	})
	if err != nil {
		return nil, nil, err
	}
	return srv, testSet, nil
}

// smokeRun binds an ephemeral port, performs health, classify, and
// hot-reload round trips over real HTTP, and shuts the server down.
func smokeRun(hs *http.Server, srv *serve.Server, testSet data.Dataset, size int, out io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	img, label := testSet.Sample(0)
	body, err := json.Marshal(map[string]any{"input": img.Data()})
	if err != nil {
		return err
	}
	resp, err = http.Post(base+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("classify: %w", err)
	}
	var got struct {
		Class *int `json:"class"`
	}
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("classify decode: %w", err)
	}
	if resp.StatusCode != http.StatusOK || got.Class == nil {
		return fmt.Errorf("classify: status %d, body %+v", resp.StatusCode, got)
	}
	fmt.Fprintf(out, "smoke: /classify -> class %d (label %d)\n", *got.Class, label)

	// The first successful batch marks the server ready; /readyz must
	// agree (poll briefly — warmup runs in the background).
	readyDeadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get(base + "/readyz")
		if err != nil {
			return fmt.Errorf("readyz: %w", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(readyDeadline) {
			return fmt.Errorf("readyz: status %d after serving traffic", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// One hot reload round trip: swap in a freshly loaded engine and
	// verify the server still classifies on the new model version.
	resp, err = http.Post(base+"/admin/reload", "application/json", nil)
	if err != nil {
		return fmt.Errorf("reload: %w", err)
	}
	var rel struct {
		Version uint64 `json:"version"`
	}
	err = json.NewDecoder(resp.Body).Decode(&rel)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("reload decode: %w", err)
	}
	if resp.StatusCode != http.StatusOK || rel.Version != 2 {
		return fmt.Errorf("reload: status %d, version %d (want 200, 2)", resp.StatusCode, rel.Version)
	}
	resp, err = http.Post(base+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("classify after reload: %w", err)
	}
	var got2 struct {
		Class *int `json:"class"`
	}
	err = json.NewDecoder(resp.Body).Decode(&got2)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("classify after reload decode: %w", err)
	}
	if resp.StatusCode != http.StatusOK || got2.Class == nil || *got2.Class != *got.Class {
		return fmt.Errorf("classify after reload: status %d, body %+v (want class %d)", resp.StatusCode, got2, *got.Class)
	}
	fmt.Fprintf(out, "smoke: hot reload -> model version %d, same prediction\n", rel.Version)

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	srv.Close()
	st := srv.Stats()
	fmt.Fprintf(out, "smoke: clean shutdown after %d request(s)\n", st.Requests)
	return nil
}
