// Command aptserve serves a model over HTTP with dynamic micro-batching,
// compiled to the integer-only inference engine. By default it trains a
// compact model on the SynthCIFAR workload at startup; -model decouples
// serving from training by loading a bit-packed checkpoint (the
// models.Save format apttrain -save writes). The checkpoint header
// names its architecture and width multiplier, so -arch and -width are
// optional overrides — needed only for legacy checkpoints written
// before the width field existed at a non-default width:
//
//	aptserve [-addr :8651] [-workers 2] [-max-batch 32] [-max-delay 2ms]
//	aptserve -model ckpt.apt [-classes 4] [-size 16]
//	aptserve -model legacy.apt -arch smallcnn -width 0.5
//
// Endpoints:
//
//	POST /classify  {"input": [c·h·w floats]} or {"inputs": [[...], ...]}
//	GET  /healthz   liveness probe
//	GET  /stats     request/batch counters, p50/p99 latency, throughput
//
// -smoke starts the server on an ephemeral port, performs one /classify
// round trip against a held-out sample, and shuts down cleanly — the CI
// end-to-end probe.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/data"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/serve"
	"repro/internal/train"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aptserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aptserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8651", "listen address")
	classes := fs.Int("classes", 4, "number of classes")
	size := fs.Int("size", 16, "input spatial size")
	trainN := fs.Int("train", 512, "training samples")
	testN := fs.Int("test", 128, "held-out samples")
	epochs := fs.Int("epochs", 6, "training epochs before serving")
	modelPath := fs.String("model", "", "serve a bit-packed checkpoint (models.Save format) instead of training at startup")
	arch := fs.String("arch", "", "override the -model checkpoint's architecture header (default: read from the checkpoint)")
	width := fs.Float64("width", 0, "override the checkpoint's width multiplier (default: read from the checkpoint)")
	seed := fs.Uint64("seed", 7, "experiment seed")
	workers := fs.Int("workers", 2, "batching workers (engine replicas)")
	maxBatch := fs.Int("max-batch", 32, "max samples fused into one engine call")
	maxDelay := fs.Duration("max-delay", 2*time.Millisecond, "max wait for a batch to fill")
	queueCap := fs.Int("queue", 0, "request queue bound (0 = 4·max-batch·workers)")
	smoke := fs.Bool("smoke", false, "serve on an ephemeral port, run one classify round trip, exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, testSet, err := buildServer(serverConfig{
		classes: *classes, size: *size, trainN: *trainN, testN: *testN,
		epochs: *epochs, seed: *seed,
		modelPath: *modelPath, arch: *arch, width: *width,
		workers: *workers, maxBatch: *maxBatch, maxDelay: *maxDelay, queueCap: *queueCap,
	}, out)
	if err != nil {
		return err
	}
	defer srv.Close()

	hs := &http.Server{Handler: srv.Handler()}
	if *smoke {
		return smokeRun(hs, srv, testSet, *size, out)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving on %s (workers=%d max-batch=%d max-delay=%s)\n",
		ln.Addr(), *workers, *maxBatch, *maxDelay)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	srv.Close()
	stats := srv.Stats()
	fmt.Fprintf(out, "served %d requests in %d batches (mean batch %.2f)\n",
		stats.Requests, stats.Batches, stats.MeanBatch)
	return nil
}

// serverConfig carries the resolved flags into buildServer.
type serverConfig struct {
	classes, size int
	trainN, testN int
	epochs        int
	seed          uint64
	modelPath     string // non-empty: load a checkpoint instead of training
	arch          string
	width         float64
	workers       int
	maxBatch      int
	maxDelay      time.Duration
	queueCap      int
}

// buildServer obtains a model — training one at startup, or loading the
// bit-packed checkpoint named by -model — compiles it to the integer
// engine, and wraps it in the batching server. The SynthCIFAR train
// split doubles as the calibration batch in both paths.
func buildServer(cfg serverConfig, out io.Writer) (*serve.Server, data.Dataset, error) {
	trainSet, testSet, err := data.NewSynth(data.SynthConfig{
		Classes: cfg.classes, Train: cfg.trainN, Test: cfg.testN, Size: cfg.size, Seed: cfg.seed, Noise: 0.5,
	})
	if err != nil {
		return nil, nil, err
	}
	var model *models.Model
	if cfg.modelPath != "" {
		model, err = loadCheckpoint(cfg.modelPath, cfg.arch, cfg.width, models.Config{
			Classes: cfg.classes, InputSize: cfg.size, Seed: cfg.seed + 1,
		})
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(out, "loaded %s (width %g) checkpoint %s\n", model.Name, model.Width, cfg.modelPath)
	} else {
		model, err = models.SmallCNN(models.Config{Classes: cfg.classes, InputSize: cfg.size, Seed: cfg.seed + 1})
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(out, "training smallcnn (%d samples, %d epochs)...\n", cfg.trainN, cfg.epochs)
		hist, err := train.Run(train.Config{
			Model: model, Train: trainSet, Test: testSet, BatchSize: 32, Epochs: cfg.epochs,
			Schedule: optim.ConstSchedule(0.05), Momentum: 0.9, Seed: cfg.seed + 2,
		})
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(out, "trained to %.1f%% accuracy\n", 100*hist.BestAcc())
	}
	calibN := 64
	if calibN > trainSet.Len() {
		calibN = trainSet.Len()
	}
	calib, _, err := data.PackBatch(trainSet, calibN)
	if err != nil {
		return nil, nil, err
	}
	engine, err := infer.Compile(model, infer.Config{Calibration: calib})
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(out, "int8 engine %.1f KiB\n", float64(engine.SizeBytes())/1024)
	srv, err := serve.New(serve.Config{
		Engine:  engine, // sample geometry defaults from engine.InputShape
		Workers: cfg.workers, MaxBatch: cfg.maxBatch, MaxDelay: cfg.maxDelay, QueueCap: cfg.queueCap,
	})
	if err != nil {
		return nil, nil, err
	}
	return srv, testSet, nil
}

// loadCheckpoint restores a bit-packed checkpoint (models.Save format)
// into the architecture its header names; arch and width, when set,
// override the header (legacy checkpoints predate the width field).
func loadCheckpoint(path, arch string, width float64, cfg models.Config) (*models.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := models.LoadAuto(f, arch, width, cfg)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return m, nil
}

// smokeRun binds an ephemeral port, performs health and classify round
// trips over real HTTP, and shuts the server down.
func smokeRun(hs *http.Server, srv *serve.Server, testSet data.Dataset, size int, out io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	img, label := testSet.Sample(0)
	body, err := json.Marshal(map[string]any{"input": img.Data()})
	if err != nil {
		return err
	}
	resp, err = http.Post(base+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("classify: %w", err)
	}
	var got struct {
		Class *int `json:"class"`
	}
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("classify decode: %w", err)
	}
	if resp.StatusCode != http.StatusOK || got.Class == nil {
		return fmt.Errorf("classify: status %d, body %+v", resp.StatusCode, got)
	}
	fmt.Fprintf(out, "smoke: /classify -> class %d (label %d)\n", *got.Class, label)

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	srv.Close()
	st := srv.Stats()
	fmt.Fprintf(out, "smoke: clean shutdown after %d request(s)\n", st.Requests)
	return nil
}
