// Command aptserve serves a model over HTTP with dynamic micro-batching,
// compiled to the integer-only inference engine. By default it trains a
// compact model on the SynthCIFAR workload at startup; -model decouples
// serving from training by loading a bit-packed checkpoint (the
// models.Save format apttrain -save writes). The checkpoint header
// names its architecture and width multiplier, so -arch and -width are
// optional overrides — needed only for legacy checkpoints written
// before the width field existed at a non-default width:
//
//	aptserve [-addr :8651] [-workers 2] [-max-batch 32] [-max-delay 2ms]
//	aptserve -model ckpt.apt [-classes 4] [-size 16]
//	aptserve -model legacy.apt -arch smallcnn -width 0.5
//
// Endpoints:
//
//	POST /classify      {"input": [c·h·w floats]} or {"inputs": [[...], ...]};
//	                    optional "deadline_ms" bounds queue wait + inference
//	GET  /healthz       liveness probe (starting/ok/degraded/draining)
//	GET  /readyz        readiness probe: 200 only when traffic should route here
//	GET  /stats         request/batch counters, p50/p99 latency, throughput
//	POST /admin/reload  hot-swap the model without dropping in-flight work
//
// Hot reload: POST /admin/reload (or send the process SIGHUP) re-reads
// the -model checkpoint — or recompiles the startup-trained model — and
// atomically swaps the new engine in; in-flight batches finish on the old
// one. Overwrite the checkpoint file with freshly trained weights, then
// reload, for a zero-downtime model update. -deadline imposes a default
// per-request deadline on requests that don't carry their own.
//
// -watch closes the loop without any operator action: the checkpoint
// path is polled at the given interval (cheaply, via the version/CRC
// trailer models.SaveFileAtomic writes; mtime+size for legacy files) and
// a change triggers the same hot reload — the serving side of apttrain
// -dist -publish. Reloads retry with backoff, so a checkpoint caught
// mid-replace by a non-atomic writer heals on the next attempt instead
// of taking the server down.
//
// -smoke starts the server on an ephemeral port, performs health,
// classify, and hot-reload round trips (plus, with -watch, a
// republish-and-poll round trip that deliberately tears the checkpoint
// mid-write), and shuts down cleanly — the CI end-to-end probe.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/data"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/serve"
	"repro/internal/train"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aptserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aptserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8651", "listen address")
	classes := fs.Int("classes", 4, "number of classes")
	size := fs.Int("size", 16, "input spatial size")
	trainN := fs.Int("train", 512, "training samples")
	testN := fs.Int("test", 128, "held-out samples")
	epochs := fs.Int("epochs", 6, "training epochs before serving")
	modelPath := fs.String("model", "", "serve a bit-packed checkpoint (models.Save format) instead of training at startup")
	arch := fs.String("arch", "", "override the -model checkpoint's architecture header (default: read from the checkpoint)")
	width := fs.Float64("width", 0, "override the checkpoint's width multiplier (default: read from the checkpoint)")
	seed := fs.Uint64("seed", 7, "experiment seed")
	workers := fs.Int("workers", 2, "batching workers (engine replicas)")
	maxBatch := fs.Int("max-batch", 32, "max samples fused into one engine call")
	maxDelay := fs.Duration("max-delay", 2*time.Millisecond, "max wait for a batch to fill")
	queueCap := fs.Int("queue", 0, "request queue bound (0 = 4·max-batch·workers)")
	deadline := fs.Duration("deadline", 0, "default per-request deadline for /classify (0 = none; requests may set deadline_ms)")
	watch := fs.Duration("watch", 0, "poll the -model checkpoint at this interval and hot-reload when it changes (0 = off)")
	smoke := fs.Bool("smoke", false, "serve on an ephemeral port, run classify and hot-reload round trips, exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *watch > 0 && *modelPath == "" {
		return fmt.Errorf("-watch requires -model")
	}

	srv, testSet, err := buildServer(serverConfig{
		classes: *classes, size: *size, trainN: *trainN, testN: *testN,
		epochs: *epochs, seed: *seed,
		modelPath: *modelPath, arch: *arch, width: *width,
		workers: *workers, maxBatch: *maxBatch, maxDelay: *maxDelay, queueCap: *queueCap,
		deadline: *deadline,
	}, out)
	if err != nil {
		return err
	}
	defer srv.Close()

	// A slow or stalled client must not hold a connection (and its
	// handler goroutine) open indefinitely: bound every phase of the
	// exchange. The write timeout leaves room for a full queue wait plus
	// a large batched inference.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	if *watch > 0 {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go watchCheckpoint(watchDone, *modelPath, *watch, srv, out)
	}
	if *smoke {
		// With -watch, the smoke run also exercises the publish side:
		// republish the checkpoint under a bumped version — tearing the
		// file mid-write first, as a crashing non-atomic publisher
		// would — and let the watcher pick it up through its retry path.
		var republish func() error
		if *watch > 0 {
			republish = func() error {
				v, _, err := models.CheckpointVersion(*modelPath)
				if err != nil {
					return err
				}
				raw, err := os.ReadFile(*modelPath)
				if err != nil {
					return err
				}
				mcfg := models.Config{Classes: *classes, InputSize: *size, Seed: *seed + 1}
				m, err := models.LoadAutoFile(*modelPath, *arch, *width, mcfg)
				if err != nil {
					return err
				}
				// The torn write in flight: half a checkpoint, written
				// in place. The watcher must reject it (CRC) and retry,
				// not swap in garbage or crash.
				if err := os.WriteFile(*modelPath, raw[:len(raw)/2], 0o644); err != nil {
					return err
				}
				return models.SaveFileAtomic(*modelPath, m, v+1)
			}
		}
		return smokeRun(hs, srv, testSet, *size, republish, out)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving on %s (workers=%d max-batch=%d max-delay=%s)\n",
		ln.Addr(), *workers, *maxBatch, *maxDelay)

	// SIGHUP hot-swaps the model: the same path as POST /admin/reload.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if v, err := srv.Reload(); err != nil {
				fmt.Fprintf(out, "reload failed: %v\n", err)
			} else {
				fmt.Fprintf(out, "reloaded model (version %d)\n", v)
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	srv.Close()
	stats := srv.Stats()
	fmt.Fprintf(out, "served %d requests in %d batches (mean batch %.2f)\n",
		stats.Requests, stats.Batches, stats.MeanBatch)
	return nil
}

// serverConfig carries the resolved flags into buildServer.
type serverConfig struct {
	classes, size int
	trainN, testN int
	epochs        int
	seed          uint64
	modelPath     string // non-empty: load a checkpoint instead of training
	arch          string
	width         float64
	workers       int
	maxBatch      int
	maxDelay      time.Duration
	queueCap      int
	deadline      time.Duration
}

// buildServer obtains a model — training one at startup, or loading the
// bit-packed checkpoint named by -model — compiles it to the integer
// engine, and wraps it in the batching server. The SynthCIFAR train
// split doubles as the calibration batch in both paths.
func buildServer(cfg serverConfig, out io.Writer) (*serve.Server, data.Dataset, error) {
	trainSet, testSet, err := data.NewSynth(data.SynthConfig{
		Classes: cfg.classes, Train: cfg.trainN, Test: cfg.testN, Size: cfg.size, Seed: cfg.seed, Noise: 0.5,
	})
	if err != nil {
		return nil, nil, err
	}
	mcfg := models.Config{Classes: cfg.classes, InputSize: cfg.size, Seed: cfg.seed + 1}
	var model *models.Model
	if cfg.modelPath != "" {
		model, err = models.LoadAutoFile(cfg.modelPath, cfg.arch, cfg.width, mcfg)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(out, "loaded %s (width %g) checkpoint %s\n", model.Name, model.Width, cfg.modelPath)
	} else {
		model, err = models.SmallCNN(mcfg)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(out, "training smallcnn (%d samples, %d epochs)...\n", cfg.trainN, cfg.epochs)
		hist, err := train.Run(train.Config{
			Model: model, Train: trainSet, Test: testSet, BatchSize: 32, Epochs: cfg.epochs,
			Schedule: optim.ConstSchedule(0.05), Momentum: 0.9, Seed: cfg.seed + 2,
		})
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(out, "trained to %.1f%% accuracy\n", 100*hist.BestAcc())
	}
	calibN := 64
	if calibN > trainSet.Len() {
		calibN = trainSet.Len()
	}
	calib, _, err := data.PackBatch(trainSet, calibN)
	if err != nil {
		return nil, nil, err
	}
	compile := func(m *models.Model) (serve.Classifier, error) {
		return infer.Compile(m, infer.Config{Calibration: calib})
	}
	engine, err := compile(model)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(out, "int8 engine %.1f KiB\n", float64(engine.(*infer.Engine).SizeBytes())/1024)
	// The reload function backs SIGHUP and POST /admin/reload: with
	// -model it re-reads the checkpoint path (pick up newly trained
	// weights written under the same name); otherwise it recompiles the
	// startup-trained model, which still proves out the swap path.
	reload := func() (serve.Classifier, error) { return compile(model) }
	if cfg.modelPath != "" {
		reload = func() (serve.Classifier, error) {
			m, err := models.LoadAutoFile(cfg.modelPath, cfg.arch, cfg.width, mcfg)
			if err != nil {
				return nil, err
			}
			return compile(m)
		}
	}
	srv, err := serve.New(serve.Config{
		Engine:  engine, // sample geometry defaults from engine.InputShape
		Workers: cfg.workers, MaxBatch: cfg.maxBatch, MaxDelay: cfg.maxDelay, QueueCap: cfg.queueCap,
		DefaultDeadline: cfg.deadline,
		Reload:          reload,
		// A reload that catches the checkpoint mid-replace heals on
		// retry once the publisher's rename lands.
		ReloadRetries: 3,
		Warmup:        true,
	})
	if err != nil {
		return nil, nil, err
	}
	return srv, testSet, nil
}

// watchCheckpoint polls a checkpoint file and hot-reloads the server
// when it changes. Checkpoints written by models.SaveFileAtomic carry a
// version trailer read without decoding the payload; legacy files fall
// back to mtime+size. A failed reload (a torn file from a non-atomic
// writer, say) leaves the change pending, so the next tick retries until
// the file heals — on top of Server.Reload's own per-call retries.
func watchCheckpoint(done <-chan struct{}, path string, every time.Duration, srv *serve.Server, out io.Writer) {
	type fileID struct {
		ver    uint64
		hasVer bool
		mtime  time.Time
		size   int64
	}
	ident := func() (fileID, error) {
		fi, err := os.Stat(path)
		if err != nil {
			return fileID{}, err
		}
		id := fileID{mtime: fi.ModTime(), size: fi.Size()}
		if v, ok, err := models.CheckpointVersion(path); err == nil && ok {
			id.ver, id.hasVer = v, true
		}
		return id, nil
	}
	same := func(a, b fileID) bool {
		if a.hasVer && b.hasVer {
			return a.ver == b.ver
		}
		return a.hasVer == b.hasVer && a.size == b.size && a.mtime.Equal(b.mtime)
	}
	last, lastErr := ident() // the checkpoint currently being served
	primed := lastErr == nil
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
		cur, err := ident()
		if err != nil {
			continue // mid-rename or gone; next tick settles it
		}
		if primed && same(cur, last) {
			continue
		}
		v, err := srv.Reload()
		if err != nil {
			fmt.Fprintf(out, "watch: reload failed: %v\n", err)
			continue // keep the change pending; retry next tick
		}
		fmt.Fprintf(out, "watch: reloaded model (version %d)\n", v)
		last, primed = cur, true
	}
}

// smokeRun binds an ephemeral port, performs health, classify, and
// hot-reload round trips over real HTTP — plus, when republish is set, a
// watcher round trip: republish the checkpoint (torn write included) and
// poll /stats until the new model version is live — and shuts the server
// down.
func smokeRun(hs *http.Server, srv *serve.Server, testSet data.Dataset, size int, republish func() error, out io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	img, label := testSet.Sample(0)
	body, err := json.Marshal(map[string]any{"input": img.Data()})
	if err != nil {
		return err
	}
	resp, err = http.Post(base+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("classify: %w", err)
	}
	var got struct {
		Class *int `json:"class"`
	}
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("classify decode: %w", err)
	}
	if resp.StatusCode != http.StatusOK || got.Class == nil {
		return fmt.Errorf("classify: status %d, body %+v", resp.StatusCode, got)
	}
	fmt.Fprintf(out, "smoke: /classify -> class %d (label %d)\n", *got.Class, label)

	// The first successful batch marks the server ready; /readyz must
	// agree (poll briefly — warmup runs in the background).
	readyDeadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get(base + "/readyz")
		if err != nil {
			return fmt.Errorf("readyz: %w", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(readyDeadline) {
			return fmt.Errorf("readyz: status %d after serving traffic", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// One hot reload round trip: swap in a freshly loaded engine and
	// verify the server still classifies on the new model version.
	resp, err = http.Post(base+"/admin/reload", "application/json", nil)
	if err != nil {
		return fmt.Errorf("reload: %w", err)
	}
	var rel struct {
		Version uint64 `json:"version"`
	}
	err = json.NewDecoder(resp.Body).Decode(&rel)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("reload decode: %w", err)
	}
	if resp.StatusCode != http.StatusOK || rel.Version != 2 {
		return fmt.Errorf("reload: status %d, version %d (want 200, 2)", resp.StatusCode, rel.Version)
	}
	resp, err = http.Post(base+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("classify after reload: %w", err)
	}
	var got2 struct {
		Class *int `json:"class"`
	}
	err = json.NewDecoder(resp.Body).Decode(&got2)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("classify after reload decode: %w", err)
	}
	if resp.StatusCode != http.StatusOK || got2.Class == nil || *got2.Class != *got.Class {
		return fmt.Errorf("classify after reload: status %d, body %+v (want class %d)", resp.StatusCode, got2, *got.Class)
	}
	fmt.Fprintf(out, "smoke: hot reload -> model version %d, same prediction\n", rel.Version)

	if republish != nil {
		if err := republish(); err != nil {
			return fmt.Errorf("republish: %w", err)
		}
		// The watcher must survive the torn intermediate write and land
		// on the republished checkpoint: model version 3 (boot = 1,
		// explicit reload = 2, watch reload = 3).
		watchDeadline := time.Now().Add(10 * time.Second)
		for {
			resp, err = http.Get(base + "/stats")
			if err != nil {
				return fmt.Errorf("stats: %w", err)
			}
			var st struct {
				ModelVersion uint64 `json:"model_version"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("stats decode: %w", err)
			}
			if st.ModelVersion >= 3 {
				fmt.Fprintf(out, "smoke: watch -> model version %d after republish\n", st.ModelVersion)
				break
			}
			if time.Now().After(watchDeadline) {
				return fmt.Errorf("watch: model version still %d after republish", st.ModelVersion)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	srv.Close()
	st := srv.Stats()
	fmt.Fprintf(out, "smoke: clean shutdown after %d request(s)\n", st.Requests)
	return nil
}
