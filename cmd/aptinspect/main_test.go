package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/models"
)

func TestInspectReportsLayers(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-model", "smallcnn", "-size", "12", "-width", "0.5", "-bits", "6"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"eps (Eq.2)", "quantized size", "forward MACs", "per-MAC energy"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if !strings.Contains(s, "18.8%") && !strings.Contains(s, "% of fp32") {
		t.Errorf("output missing fp32 ratio: %s", s)
	}
	// SmallCNN interleaves stride-1 and stride-2 convs, so the serving
	// lowering table must show both modes with their stride reasons.
	for _, want := range []string{"conv lowering", "implicit", "materialized", "stride 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("lowering table missing %q:\n%s", want, s)
		}
	}
}

func TestInspectAllBackbones(t *testing.T) {
	for _, m := range []string{"resnet20", "mobilenetv2", "cifarnet", "vggsmall", "smallcnn"} {
		var out strings.Builder
		if err := run([]string{"-model", m, "-size", "16", "-width", "0.25", "-bits", "8"}, &out); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
}

func TestInspectRejectsBadModel(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", "nosuch"}, &out); err == nil {
		t.Error("unknown model did not error")
	}
}

func TestInspectLoadsCheckpoint(t *testing.T) {
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 12, Seed: 42})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	for _, p := range m.Params() {
		if err := p.SetBits(5); err != nil {
			t.Fatalf("SetBits: %v", err)
		}
	}
	path := filepath.Join(t.TempDir(), "m.ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := models.Save(f, m); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var out strings.Builder
	if err := run([]string{"-model", "smallcnn", "-classes", "4", "-size", "12", "-seed", "42", "-load", path}, &out); err != nil {
		t.Fatalf("run -load: %v", err)
	}
	if !strings.Contains(out.String(), "5") {
		t.Errorf("inspection of a 5-bit checkpoint shows no 5-bit layers:\n%s", out.String())
	}
	if err := run([]string{"-model", "smallcnn", "-load", "/nonexistent"}, &out); err == nil {
		t.Error("missing checkpoint did not error")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		bits int64
		want string
	}{
		{8, "1B"},
		{8 * 2048, "2.00KiB"},
		{8 * 3 << 20, "3.00MiB"},
	}
	for _, tc := range cases {
		if got := fmtBytes(tc.bits); got != tc.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", tc.bits, got, tc.want)
		}
	}
}
