// Command aptinspect quantizes a freshly initialized backbone at a given
// bitwidth and reports each layer's quantization state: value range, the
// minimum resolution ε (Eq. 2), parameter count, storage size and per-MAC
// energy — a static view of what APT manages dynamically. It also prints
// the live kernel dispatch and, per dense conv layer, the im2col
// lowering the int8 serving engine would compile it onto (implicit band
// gather vs materialized patch matrix) with the rule behind the choice.
//
// Usage:
//
//	aptinspect -model resnet20 -bits 6
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/energy"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aptinspect:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aptinspect", flag.ContinueOnError)
	modelName := fs.String("model", "resnet20", "backbone: resnet20, resnet110, mobilenetv2, cifarnet, vggsmall, smallcnn")
	classes := fs.Int("classes", 10, "number of classes")
	size := fs.Int("size", 32, "input spatial size")
	width := fs.Float64("width", 1.0, "backbone width multiplier")
	bits := fs.Int("bits", 6, "bitwidth to quantize to (ignored with -load)")
	seed := fs.Uint64("seed", 42, "weight-init seed")
	load := fs.String("load", "", "inspect a trained checkpoint instead of a fresh quantization (model flags must match the checkpointed architecture)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := models.Config{Classes: *classes, InputSize: *size, Width: *width, Seed: *seed}
	var (
		m   *models.Model
		err error
	)
	switch *modelName {
	case "resnet20":
		m, err = models.ResNet20(cfg)
	case "resnet110":
		m, err = models.ResNet110(cfg)
	case "mobilenetv2":
		m, err = models.MobileNetV2(cfg)
	case "cifarnet":
		m, err = models.CifarNet(cfg)
	case "vggsmall":
		m, err = models.VGGSmall(cfg)
	case "smallcnn":
		m, err = models.SmallCNN(cfg)
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	if err != nil {
		return err
	}

	params := m.Params()
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := models.Load(f, m); err != nil {
			return fmt.Errorf("load %s: %w", *load, err)
		}
	} else {
		for _, p := range params {
			if err := p.SetBits(*bits); err != nil {
				return err
			}
		}
	}
	em := energy.DefaultModel()
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "parameter\tshape elems\trange\teps (Eq.2)\tbits\tsize\n")
	var totalBits int64
	for _, p := range params {
		min, max := p.Value.MinMax()
		totalBits += p.SizeBits()
		fmt.Fprintf(tw, "%s\t%d\t[%.3f, %.3f]\t%.3g\t%d\t%s\n",
			p.Name, p.Value.Len(), min, max, p.Eps(), p.Bits(), fmtBytes(p.SizeBits()))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fp32 := energy.FP32SizeBits(params)
	var nParams int
	for _, p := range params {
		nParams += p.Value.Len()
	}
	fmt.Fprintf(out, "\nmodel: %s, %d params in %d tensors\n", m.Name, nParams, len(params))
	fmt.Fprintf(out, "quantized size %s (%.1f%% of fp32 %s)\n",
		fmtBytes(totalBits), 100*float64(totalBits)/float64(fp32), fmtBytes(fp32))
	snap := energy.Snapshot(m.Layers())
	var macs int64
	for _, lc := range snap {
		macs += lc.MACs
	}
	fmt.Fprintf(out, "forward MACs/sample %d; iteration energy %.3g (fp32 %.3g) per sample\n",
		macs, em.IterationEnergy(snap), em.FP32Reference(snap, 1))
	fmt.Fprintf(out, "per-MAC energy at %d bits: %.4f of a 32-bit MAC\n",
		*bits, em.MACCost(*bits)/em.MACCost(quant.MaxBits))
	fmt.Fprintf(out, "kernel dispatch: %s\n", tensor.KernelSummary())
	if lows := convLowerings(m.Layers()); len(lows) > 0 {
		fmt.Fprintf(out, "\nint8 serving conv lowering (infer.Compile per-geometry rule):\n")
		lw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintf(lw, "layer\tgeometry\tlowering\twhy\n")
		for _, l := range lows {
			g := l.geom
			fmt.Fprintf(lw, "%s\t%dx%dx%d k%dx%d s%d p%d\t%s\t%s\n",
				l.name, g.InC, g.InH, g.InW, g.KH, g.KW, g.Stride, g.Pad, l.mode, l.why)
		}
		if err := lw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// convLoweringRow is one dense conv layer's compile-time im2col
// lowering decision, as infer.Compile would make it for this backbone.
type convLoweringRow struct {
	name      string
	geom      tensor.ConvGeom
	mode, why string
}

// convLowerings walks the layer tree (sequential containers and
// residual blocks included) and reports, in forward order, which im2col
// lowering the serving engine would pick for every dense conv — the
// same infer.LoweringFor rule the compiler runs, so this inspection
// cannot drift from the engine.
func convLowerings(ls []nn.Layer) []convLoweringRow {
	var out []convLoweringRow
	for _, l := range ls {
		switch v := l.(type) {
		case *nn.Conv2D:
			mode, why := infer.LoweringFor(v.Geom())
			out = append(out, convLoweringRow{name: v.Name(), geom: v.Geom(), mode: mode, why: why})
		case *nn.Sequential:
			out = append(out, convLowerings(v.Layers())...)
		case *nn.Residual:
			out = append(out, convLowerings([]nn.Layer{v.Main()})...)
			if sc := v.Shortcut(); sc != nil {
				out = append(out, convLowerings([]nn.Layer{sc})...)
			}
		}
	}
	return out
}

func fmtBytes(bits int64) string {
	bytes := float64(bits) / 8
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%.2fMiB", bytes/(1<<20))
	case bytes >= 1<<10:
		return fmt.Sprintf("%.2fKiB", bytes/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", bytes)
	}
}
