package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Example demonstrates the documented quickstart path end to end on a
// tiny workload: generate data, augment, train with APT, report savings.
func Example() {
	train, test, err := repro.SynthDataset(repro.SynthConfig{
		Classes: 3, Train: 96, Test: 48, Size: 12, Seed: 1, Noise: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	aug, err := repro.Augment(train, 1, 12, 2)
	if err != nil {
		log.Fatal(err)
	}
	model, err := repro.SmallCNN(repro.ModelConfig{Classes: 3, InputSize: 12, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := repro.New(repro.Config{
		Model: model, Train: aug, Test: test,
		Epochs: 2, BatchSize: 32, Mode: repro.ModeAPT, Tmin: 6, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	hist, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	// Training at adaptive low precision always costs less than fp32.
	fmt.Println("saved energy:", hist.NormalizedEnergy() < 1)
	fmt.Println("saved memory:", hist.NormalizedSize() < 1)
	// Output:
	// saved energy: true
	// saved memory: true
}
